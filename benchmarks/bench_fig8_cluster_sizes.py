"""Figure 8 — the 100 biggest clusters under different ``N`` values.

The paper plots cluster-size-by-rank for ml10M and AM: on ml10M the raw
clusters are highly unbalanced and splitting caps the biggest near N;
on AM the biggest raw cluster is already small, so recursive splitting
never fires for N >= 1000 — which is why Figure 7's N sweep only moves
ml10M.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import bench_scale, emit, scale_split_threshold
from repro.core import cluster_dataset, make_hash_family

from conftest import get_dataset, get_workload

N_VALUES = [500, 1000, 2500, 5000, 7500, 10000]
RANKS = [0, 4, 19, 49, 99]  # sampled ranks of the paper's 100-cluster curve


@pytest.mark.parametrize("dataset_name", ["ml10M", "AM"])
def test_fig8_biggest_clusters(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)
    scale = workload.scale
    params = workload.c2_params

    def sweep():
        curves = {}
        hashes = make_hash_family(
            dataset.n_items, params.n_buckets, params.n_hashes, seed=params.seed
        )
        for n in N_VALUES:
            scaled_n = scale_split_threshold(n, scale)
            clustering = cluster_dataset(dataset, hashes, split_threshold=scaled_n)
            sizes = clustering.sizes()[:100]
            curves[n] = (scaled_n, sizes)
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, (scaled_n, sizes) in curves.items():
        row = {"N (paper)": n, "N (scaled)": scaled_n}
        for r in RANKS:
            row[f"rank {r + 1}"] = int(sizes[r]) if r < sizes.size else 0
        rows.append(row)
    emit(
        f"fig8_{dataset_name}",
        f"Fig. 8 analog — {dataset_name} at scale={bench_scale()} "
        "(size of the biggest clusters per split threshold)",
        rows,
    )

    biggest = {n: int(sizes[0]) for n, (_, sizes) in curves.items()}
    if dataset_name == "ml10M":
        # Skewed popularity: smaller N caps the biggest cluster harder.
        assert biggest[500] < biggest[10000]
    else:
        # Sparse AM: raw clusters are far smaller relative to the
        # dataset than ml10M's (the paper's contrast), and the N sweep
        # stops mattering once N exceeds the biggest raw cluster.
        # (At bench scale communities keep their absolute size, so AM's
        # relative raw-cluster fraction is inflated vs the paper's
        # full-size 1.7% — see EXPERIMENTS.md.)
        assert biggest[7500] == biggest[10000]
        ml = get_dataset("ml10M")
        ml_params = get_workload("ml10M").c2_params
        ml_hashes = make_hash_family(
            ml.n_items, ml_params.n_buckets, ml_params.n_hashes, seed=ml_params.seed
        )
        ml_raw = cluster_dataset(ml, ml_hashes, split_threshold=None).sizes()[0]
        am_raw = curves[10000][1][0]
        assert ml_raw / ml.n_users > 2 * am_raw / dataset.n_users
