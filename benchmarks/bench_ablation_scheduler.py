"""Ablation — largest-first scheduling vs FIFO (DESIGN.md §5).

The paper's Step 2 drains a size-ordered priority queue so big clusters
cannot straggle at the end of the parallel phase. The effect on wall
time is hardware- and GIL-dependent, so alongside measured times we
report the deterministic makespan model: finishing times of a greedy
list schedule under work ∝ size² on 8 workers.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.bench import bench_scale, emit
from repro.core import cluster_and_conquer
from repro.similarity import make_engine

from conftest import get_dataset, get_workload


def _list_schedule_makespan(sizes: np.ndarray, n_workers: int) -> float:
    """Greedy list-scheduling makespan with work = size^2."""
    workers = [0.0] * n_workers
    heapq.heapify(workers)
    for s in sizes:
        t = heapq.heappop(workers)
        heapq.heappush(workers, t + float(s) ** 2)
    return max(workers)


def test_ablation_scheduling_order(benchmark):
    dataset = get_dataset("ml10M")
    workload = get_workload("ml10M")
    params = workload.c2_params.with_(n_workers=8)

    largest_result = benchmark.pedantic(
        lambda: cluster_and_conquer(make_engine(dataset), params),
        rounds=1,
        iterations=1,
    )
    fifo_result = cluster_and_conquer(
        make_engine(dataset), params.with_(schedule="fifo")
    )

    sizes = largest_result.extra["cluster_sizes"]
    rng = np.random.default_rng(0)
    fifo_order = rng.permutation(sizes)  # arrival order is arbitrary
    largest_order = np.sort(sizes)[::-1]

    rows = [
        {
            "Schedule": "largest-first (paper)",
            "Time (s)": f"{largest_result.seconds:.2f}",
            "Model makespan (8w)": f"{_list_schedule_makespan(largest_order, 8):.0f}",
        },
        {
            "Schedule": "FIFO",
            "Time (s)": f"{fifo_result.seconds:.2f}",
            "Model makespan (8w)": f"{_list_schedule_makespan(fifo_order, 8):.0f}",
        },
    ]
    emit(
        "ablation_scheduler",
        f"Ablation: cluster scheduling order — ml10M at scale={bench_scale()}",
        rows,
    )

    # The graphs must be identical (order cannot change the result) ...
    assert np.array_equal(
        largest_result.graph.heaps.ids, fifo_result.graph.heaps.ids
    )
    # ... and the model makespan of largest-first is never worse.
    assert _list_schedule_makespan(largest_order, 8) <= _list_schedule_makespan(
        fifo_order, 8
    )
