"""Table II — computation time and KNN quality, all datasets.

The paper's headline table: C² vs Hyrec, NN-Descent and LSH on six
datasets (k = 30, GoldFinger 1024 bits everywhere). We report wall
time, similarity-computation counts (the hardware-independent cost the
paper's analysis is based on) and quality vs the exact graph, next to
the paper's published times/qualities.

Expected shape (asserted): C² needs the fewest similarity computations
on every dataset and quality stays within a small margin of the best
baseline.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, emit, evaluate_run, run_algorithm
from repro.data import dataset_names

from conftest import get_dataset, get_workload

# (time s, quality) from the paper's Table II.
PAPER_TABLE2 = {
    "ml1M": {"Hyrec": (4.43, 0.92), "NNDescent": (10.98, 0.93), "LSH": (2.96, 0.92), "C2": (2.64, 0.91)},
    "ml10M": {"Hyrec": (109.98, 0.90), "NNDescent": (147.03, 0.93), "LSH": (255.33, 0.94), "C2": (27.79, 0.89)},
    "ml20M": {"Hyrec": (289.23, 0.88), "NNDescent": (383.21, 0.92), "LSH": (1060.76, 0.93), "C2": (106.25, 0.89)},
    "AM": {"Hyrec": (62.41, 0.93), "NNDescent": (91.24, 0.95), "LSH": (140.53, 0.96), "C2": (14.11, 0.95)},
    "DBLP": {"Hyrec": (26.84, 0.81), "NNDescent": (24.43, 0.82), "LSH": (37.80, 0.86), "C2": (6.54, 0.84)},
    "GW": {"Hyrec": (21.88, 0.78), "NNDescent": (26.05, 0.79), "LSH": (26.91, 0.82), "C2": (8.38, 0.82)},
}

ALGOS = ["Hyrec", "NNDescent", "LSH", "C2"]


@pytest.mark.parametrize("dataset_name", dataset_names())
def test_table2_dataset(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)
    workload = get_workload(dataset_name)

    runs = {}
    for algo in ALGOS:
        if algo == "C2":
            # C2 is the benchmarked (timed) subject of this experiment.
            result = benchmark.pedantic(
                run_algorithm, args=(algo, dataset, workload), rounds=1, iterations=1
            )
        else:
            result = run_algorithm(algo, dataset, workload)
        runs[algo] = evaluate_run(algo, dataset, workload, result)

    rows = []
    for algo in ALGOS:
        run = runs[algo]
        paper_time, paper_quality = PAPER_TABLE2[dataset_name][algo]
        rows.append(
            {
                "Algo": algo,
                "Time (s)": f"{run.seconds:.2f}",
                "Similarities": run.comparisons,
                "Quality": f"{run.quality:.2f}",
                "paper Time": paper_time,
                "paper Quality": paper_quality,
            }
        )

    baselines = [runs[a] for a in ALGOS if a != "C2"]
    best_baseline = min(baselines, key=lambda r: r.seconds)
    speedup = best_baseline.seconds / runs["C2"].seconds
    comp_ratio = min(r.comparisons for r in baselines) / runs["C2"].comparisons
    emit(
        f"table2_{dataset_name}",
        f"Table II analog — {dataset_name} at scale={bench_scale()}\n"
        f"speed-up vs best baseline: x{speedup:.2f} (paper: x1.12-x4.42)\n"
        f"similarity-count ratio vs best baseline: x{comp_ratio:.2f}",
        rows,
    )

    # Shape: C2 beats both greedy baselines outright — on similarity
    # count (the paper's headline mechanism: no random-start
    # exploration) and on wall time ...
    assert runs["C2"].comparisons < runs["Hyrec"].comparisons
    assert runs["C2"].comparisons < runs["NNDescent"].comparisons
    assert runs["C2"].seconds < runs["Hyrec"].seconds
    assert runs["C2"].seconds < runs["NNDescent"].seconds
    # ... and quality is within a small margin of the best baseline.
    # (LSH's relative position is reported, not asserted: our vectorised
    # LSH is stronger relative to C2 than the paper's Java LSH on the
    # smallest sparse stand-ins — see EXPERIMENTS.md.)
    best_quality = max(r.quality for r in baselines)
    assert runs["C2"].quality > best_quality - 0.12
