"""Shared fixtures for the benchmark suite.

Datasets and exact ground-truth graphs are expensive; they are built
once per session and shared across benchmark files via the runner's
memo cache. ``REPRO_SCALE`` (default 0.05) controls dataset size.
"""

from __future__ import annotations

import pytest

from repro.bench import load_workload_dataset, paper_workload

_DATASETS: dict[str, object] = {}
_WORKLOADS: dict[str, object] = {}


def get_workload(name: str):
    """Session-cached workload for a paper dataset."""
    if name not in _WORKLOADS:
        _WORKLOADS[name] = paper_workload(name)
    return _WORKLOADS[name]


def get_dataset(name: str):
    """Session-cached synthetic dataset for a paper dataset name."""
    if name not in _DATASETS:
        _DATASETS[name] = load_workload_dataset(get_workload(name))
    return _DATASETS[name]


@pytest.fixture(scope="session")
def ml10m():
    return get_dataset("ml10M")


@pytest.fixture(scope="session")
def am():
    return get_dataset("AM")
